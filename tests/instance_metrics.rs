//! Per-property instance metrics, end to end: the DES56 latency-17
//! property `p4 = always (!ds || next[17] rdy) @clk_pos` driven through
//! the real attach/finalize flow. Under back-to-back requests (a firing
//! at every clock edge) the checker-instance pool must climb to the
//! paper's static lifetime bound — 170 ns of instance lifetime over a
//! 10 ns clock = 17 concurrent instances (Section IV, point 1) — while
//! the default sparse workloads reuse a single slot, and an injected
//! latency fault shows up in the dedicated timeout-fail counter.

use abv_checker::{Binding, Checker};
use designs::{AbsLevel, DesignKind, Fault, CLOCK_PERIOD_NS};
use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use rtlkit::{Clock, EdgeDetector};

const FIRST_EDGE: u64 = 2;
const LATENCY: u64 = 17;

/// A perfectly pipelined latency-17 responder: `ds` strobes on
/// `requests` consecutive rising edges and each request's `rdy` answers
/// exactly 17 edges later — the overlap the non-pipelined DES56 core
/// cannot produce, and precisely the scenario the paper sizes the
/// checker-instance array for. Inputs are written at falling edges so
/// the rising-edge sample sees them stable (same discipline as the DES56
/// RTL testbench).
struct PipelinedStub {
    clk: SignalId,
    det: EdgeDetector,
    ds: SignalId,
    rdy: SignalId,
    requests: u64,
}

impl Component for PipelinedStub {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let v = ctx.read(self.clk);
        if !self.det.is_falling(v) {
            return;
        }
        // Falling edge at k·period + period/2 prepares rising edge k+1.
        let edge = ev.time.as_ns() / CLOCK_PERIOD_NS + 1;
        let ds_on = edge >= FIRST_EDGE && edge < FIRST_EDGE + self.requests;
        let rdy_on = edge >= FIRST_EDGE + LATENCY && edge < FIRST_EDGE + LATENCY + self.requests;
        ctx.write(self.ds, u64::from(ds_on));
        ctx.write(self.rdy, u64::from(rdy_on));
    }
}

/// The real p4 from the DES56 suite at the requested level.
fn p4_at(level: AbsLevel) -> (String, psl::ClockedProperty) {
    designs::properties_at(DesignKind::Des56, level)
        .into_iter()
        .find(|(name, _)| name == "p4")
        .expect("the DES56 suite defines p4")
}

#[test]
fn back_to_back_requests_fill_the_pool_to_the_lifetime_bound() {
    let requests = 40u64;
    let mut sim = Simulation::new();
    let clk = Clock::install(&mut sim, "clk", CLOCK_PERIOD_NS);
    let ds = sim.add_signal("ds", 0);
    let rdy = sim.add_signal("rdy", 0);
    let stub = sim.add_component(PipelinedStub {
        clk: clk.signal,
        det: EdgeDetector::new(),
        ds,
        rdy,
        requests,
    });
    sim.subscribe(clk.signal, stub, 0);

    let (name, p4) = p4_at(AbsLevel::Rtl);
    let checker = Checker::attach(&mut sim, &name, &p4, Binding::clock(clk.signal))
        .expect("p4 attaches at a clock binding");

    let end_ns = (FIRST_EDGE + LATENCY + requests + 2) * CLOCK_PERIOD_NS;
    sim.run_until(SimTime::from_ns(end_ns));
    let report = checker.finalize(&mut sim, end_ns);

    assert_eq!(report.completions, requests, "{report}");
    assert_eq!(report.failure_count, 0, "{report}");
    // 170 ns of lifetime on a 10 ns clock: 17 overlapping instances (one
    // more may be live transiently at the completion edge).
    assert!(
        (17..=18).contains(&report.max_live_instances),
        "pool occupancy {} does not match the paper's bound of 17",
        report.max_live_instances
    );
    // Every instance resolved exactly one design latency after firing.
    assert_eq!(report.latency.count(), requests);
    assert_eq!(report.latency.max(), LATENCY * CLOCK_PERIOD_NS);
    assert_eq!(report.timeout_fails, 0);
}

#[test]
fn sparse_workload_reuses_a_single_slot() {
    // The stock DES56 RTL workload spaces requests 20 cycles apart —
    // wider than the 17-cycle lifetime — so the pool never grows past 1.
    let mut built =
        designs::build(DesignKind::Des56, AbsLevel::Rtl, 4, 7, Fault::None).expect("builds");
    let (name, p4) = p4_at(AbsLevel::Rtl);
    let binding = built.binding();
    let checkers = Checker::attach_all(&mut built.sim, &[(name, p4)], binding).expect("attaches");
    built.run();
    let end = built.end_ns;
    let report = Checker::collect(&mut built.sim, &checkers, end);
    let p4 = report.property("p4").expect("collected");
    assert_eq!(p4.completions, 4, "{p4}");
    assert_eq!(p4.max_live_instances, 1, "slot is reset and reused: {p4}");
    assert_eq!(p4.latency.max(), LATENCY * CLOCK_PERIOD_NS);
}

#[test]
fn latency_fault_lands_in_the_timeout_fail_counter() {
    // At TLM-AT the abstracted p4 carries `next_ε^τ` deadlines; a
    // latency-short core completes before the registered evaluation
    // instant, so every failure is a missed deadline — the
    // abstraction-specific failure mode split out by `timeout_fails`.
    let props = designs::properties_at(DesignKind::Des56, AbsLevel::TlmAt);
    let mut built = designs::build(
        DesignKind::Des56,
        AbsLevel::TlmAt,
        5,
        11,
        Fault::LatencyShort,
    )
    .expect("builds");
    let binding = built.binding();
    let checkers = Checker::attach_all(&mut built.sim, &props, binding).expect("attaches");
    built.run();
    let end = built.end_ns;
    let report = Checker::collect(&mut built.sim, &checkers, end);
    let p4 = report.property("p4").expect("collected");
    assert!(p4.timeout_fails > 0, "{p4}");
    assert_eq!(
        p4.timeout_fails, p4.failure_count,
        "all p4 failures at AT are missed deadlines: {p4}"
    );

    // The fault-free reference keeps the counter at zero.
    let mut clean =
        designs::build(DesignKind::Des56, AbsLevel::TlmAt, 5, 11, Fault::None).expect("builds");
    let binding = clean.binding();
    let checkers = Checker::attach_all(&mut clean.sim, &props, binding).expect("attaches");
    clean.run();
    let end = clean.end_ns;
    let clean_report = Checker::collect(&mut clean.sim, &checkers, end);
    assert_eq!(
        clean_report
            .property("p4")
            .expect("collected")
            .timeout_fails,
        0
    );
}
