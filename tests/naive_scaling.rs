//! The Section III-A ablation: why the paper rejects naive
//! `next[n] → next[m]` transaction-count rescaling in favour of
//! `next_ε^τ`.
//!
//! The naive abstraction of `p4` ("one transaction covers the 17 cycles,
//! so check `rdy` one transaction later") happens to pass on the loose
//! TLM-AT model with exactly two transactions per block — but the arrival
//! of an additional (overlapping/unexpected) transaction introduces an
//! extra evaluation point and makes it fail inopportunely, exactly as the
//! paper argues. The `next_ε^τ` abstraction is immune.

mod common;

use abv_checker::{Binding, Checker};
use abv_core::{abstract_property, naive::naive_scale};
use common::des_config;
use designs::des56::{self, DesMutation, DesWorkload};
use psl::{ClockedProperty, EvalContext, Property};
use tlmkit::CodingStyle;

/// `p4` naively rescaled: 17 cycles ↦ 1 transaction.
fn naive_q4() -> ClockedProperty {
    let suite = des56::suite();
    let p4 = &suite.iter().find(|e| e.name == "p4").unwrap().rtl;
    let nnf = psl::nnf::to_nnf(&p4.property);
    let pushed = psl::push_ahead::push_ahead(&nnf).unwrap();
    let scaled = naive_scale(&pushed, 17).unwrap();
    assert_eq!(scaled.to_string(), "always ((!ds) || (next rdy))");
    ClockedProperty::new(scaled, EvalContext::tb())
}

/// The paper's `next_ε^τ` abstraction of `p4`.
fn q4() -> ClockedProperty {
    let suite = des56::suite();
    let p4 = &suite.iter().find(|e| e.name == "p4").unwrap().rtl;
    abstract_property(p4, &des_config())
        .unwrap()
        .into_property()
        .unwrap()
}

fn run(property: ClockedProperty, style: CodingStyle) -> abv_checker::PropertyReport {
    let w = DesWorkload::mixed(8, 0x7A);
    let mut built = des56::build_tlm_at(&w, DesMutation::None, style);
    let checkers = Checker::attach_all(
        &mut built.sim,
        &[("q".to_owned(), property)],
        Binding::bus(&built.bus),
    )
    .expect("installs");
    built.run();
    Checker::collect(&mut built.sim, &checkers, built.end_ns)
        .properties
        .remove(0)
}

#[test]
fn naive_scaling_passes_only_on_the_exact_expected_schedule() {
    // Two transactions per block: the event after the write IS the read.
    let report = run(naive_q4(), CodingStyle::ApproximatelyTimedLoose);
    assert_eq!(report.failure_count, 0, "{:?}", report.failures.first());
    assert_eq!(report.completions, 8);
}

#[test]
fn overlapping_transaction_breaks_naive_scaling() {
    // The strict style adds the strobe-release transaction 10 ns after the
    // write: "the arrival of an overlapping (unexpected) transaction …
    // could introduce an extra evaluation point for that property causing
    // its inopportune failure" (Section III-A).
    let report = run(naive_q4(), CodingStyle::ApproximatelyTimedStrict);
    assert!(
        report.failure_count > 0,
        "the extra transaction must break next[1]"
    );
}

#[test]
fn next_et_abstraction_is_robust_to_extra_transactions() {
    for style in [
        CodingStyle::ApproximatelyTimedLoose,
        CodingStyle::ApproximatelyTimedStrict,
    ] {
        let report = run(q4(), style);
        assert_eq!(
            report.failure_count,
            0,
            "{style}: next_et anchors to absolute time, extra events are ignored: {:?}",
            report.failures.first()
        );
        assert_eq!(report.completions, 8);
    }
}

#[test]
fn naive_scaling_breaks_even_at_ca_granularity_without_exact_knowledge() {
    // Rescaling with the wrong cycles-per-transaction guess (e.g. assuming
    // 2 cycles per transaction on a 1-cycle-per-transaction CA model)
    // shifts the check to the wrong cycle.
    let suite = des56::suite();
    let p4 = &suite.iter().find(|e| e.name == "p4").unwrap().rtl;
    let pushed = psl::push_ahead::push_ahead(&psl::nnf::to_nnf(&p4.property)).unwrap();
    let wrong: Property = naive_scale(&pushed, 2).unwrap(); // next[9] on a 1:1 model
    let q = ClockedProperty::new(wrong, EvalContext::tb());

    let w = DesWorkload::mixed(4, 0x7B);
    let mut built = des56::build_tlm_ca(&w, DesMutation::None);
    let checkers = Checker::attach_all(
        &mut built.sim,
        &[("wrong".to_owned(), q)],
        Binding::bus(&built.bus),
    )
    .unwrap();
    built.run();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    assert!(report.properties[0].failure_count > 0);
}
