//! Def. III.1 timing equivalence between the abstraction levels, checked
//! on recorded traces: the RTL clock-edge trace and the TLM-CA
//! transaction trace must agree exactly on the preserved I/O signals, and
//! every TLM-AT transaction instant must agree with the RTL trace at that
//! time.

use designs::colorconv::{self, ConvMutation, ConvWorkload};
use designs::des56::{self, DesMutation, DesWorkload};
use psl::{ClockEdge, SignalEnv, Trace};
use rtlkit::WaveRecorder;
use tlmkit::{CodingStyle, TxTraceRecorder};

fn des_rtl_trace(w: &DesWorkload) -> Trace {
    let mut built = des56::build_rtl(w, DesMutation::None);
    let rec = WaveRecorder::install(
        &mut built.sim,
        built.clk.signal,
        ClockEdge::Pos,
        des56::RTL_SIGNALS,
    );
    built.run();
    WaveRecorder::take_trace(&built.sim, rec)
}

fn des_ca_trace(w: &DesWorkload) -> Trace {
    let mut built = des56::build_tlm_ca(w, DesMutation::None);
    let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, des56::TLM_CA_SIGNALS);
    built.run();
    TxTraceRecorder::take_trace(&built.sim, rec)
}

fn des_at_trace(w: &DesWorkload, style: CodingStyle) -> Trace {
    let mut built = des56::build_tlm_at(w, DesMutation::None, style);
    let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, des56::TLM_AT_SIGNALS);
    built.run();
    TxTraceRecorder::take_trace(&built.sim, rec)
}

/// Asserts both traces define `signals` identically at every instant of
/// `subset`, which must be a time-subset of `full`.
#[track_caller]
fn assert_subset_equal(subset: &Trace, full: &Trace, signals: &[&str]) {
    for step in subset.steps() {
        let pos = full
            .position_at_time(step.time_ns)
            .unwrap_or_else(|| panic!("no reference instant at {}ns", step.time_ns));
        let reference = &full.steps()[pos];
        for &sig in signals {
            assert_eq!(
                step.signal(sig),
                reference.signal(sig),
                "signal `{sig}` differs at {}ns",
                step.time_ns
            );
        }
    }
}

#[test]
fn des56_rtl_and_tlm_ca_traces_are_identical() {
    let w = DesWorkload::mixed(10, 0xE1);
    let rtl = des_rtl_trace(&w);
    let ca = des_ca_trace(&w);
    // Same instants, one per clock cycle…
    let rtl_times: Vec<u64> = rtl.steps().iter().map(|s| s.time_ns).collect();
    let ca_times: Vec<u64> = ca.steps().iter().map(|s| s.time_ns).collect();
    assert_eq!(rtl_times, ca_times);
    // …and identical values on every preserved signal.
    assert_subset_equal(&ca, &rtl, des56::TLM_CA_SIGNALS);
}

#[test]
fn des56_tlm_at_transactions_agree_with_rtl_at_their_instants() {
    let w = DesWorkload::mixed(6, 0xE2);
    let rtl = des_rtl_trace(&w);
    for style in [
        CodingStyle::ApproximatelyTimedLoose,
        CodingStyle::ApproximatelyTimedStrict,
    ] {
        let at = des_at_trace(&w, style);
        assert_subset_equal(&at, &rtl, des56::TLM_AT_SIGNALS);
    }
}

#[test]
fn des56_strict_at_covers_every_preserved_io_change() {
    // Def. III.1 (as used in the proof of Thm. III.1): the TLM model must
    // have a transaction at every instant where a preserved I/O signal
    // changes on the RTL model.
    let w = DesWorkload::mixed(4, 0xE3);
    let rtl = des_rtl_trace(&w);
    let at = des_at_trace(&w, CodingStyle::ApproximatelyTimedStrict);
    let steps = rtl.steps();
    for k in 1..steps.len() {
        let changed = des56::TLM_AT_SIGNALS
            .iter()
            .any(|s| steps[k].signal(s) != steps[k - 1].signal(s));
        if changed {
            assert!(
                at.position_at_time(steps[k].time_ns).is_some(),
                "preserved I/O changed at {}ns but strict TLM-AT has no transaction there",
                steps[k].time_ns
            );
        }
    }
}

#[test]
fn des56_loose_at_misses_some_io_changes() {
    // The loose (paper Section V) style is *not* strictly Def. III.1
    // equivalent: the strobe release instant has no transaction.
    let w = DesWorkload::mixed(4, 0xE4);
    let rtl = des_rtl_trace(&w);
    let at = des_at_trace(&w, CodingStyle::ApproximatelyTimedLoose);
    let steps = rtl.steps();
    let mut missed = 0;
    for k in 1..steps.len() {
        let changed = des56::TLM_AT_SIGNALS
            .iter()
            .any(|s| steps[k].signal(s) != steps[k - 1].signal(s));
        if changed && at.position_at_time(steps[k].time_ns).is_none() {
            missed += 1;
        }
    }
    assert!(
        missed > 0,
        "loose TLM-AT deliberately skips the release instants"
    );
}

#[test]
fn colorconv_rtl_and_tlm_ca_traces_are_identical() {
    let w = ConvWorkload::mixed(12, 0xE5);
    let mut rtl_built = colorconv::build_rtl(&w, ConvMutation::None);
    let rtl_rec = WaveRecorder::install(
        &mut rtl_built.sim,
        rtl_built.clk.signal,
        ClockEdge::Pos,
        colorconv::RTL_SIGNALS,
    );
    rtl_built.run();
    let rtl = WaveRecorder::take_trace(&rtl_built.sim, rtl_rec);

    let mut ca_built = colorconv::build_tlm_ca(&w, ConvMutation::None);
    let ca_rec =
        TxTraceRecorder::install(&mut ca_built.sim, &ca_built.bus, colorconv::TLM_CA_SIGNALS);
    ca_built.run();
    let ca = TxTraceRecorder::take_trace(&ca_built.sim, ca_rec);

    assert_eq!(rtl.len(), ca.len());
    assert_subset_equal(&ca, &rtl, colorconv::TLM_CA_SIGNALS);
}

#[test]
fn colorconv_tlm_at_agrees_with_rtl_at_transaction_instants() {
    let w = ConvWorkload::mixed(8, 0xE6);
    let mut rtl_built = colorconv::build_rtl(&w, ConvMutation::None);
    let rtl_rec = WaveRecorder::install(
        &mut rtl_built.sim,
        rtl_built.clk.signal,
        ClockEdge::Pos,
        colorconv::RTL_SIGNALS,
    );
    rtl_built.run();
    let rtl = WaveRecorder::take_trace(&rtl_built.sim, rtl_rec);

    let mut at_built =
        colorconv::build_tlm_at(&w, ConvMutation::None, CodingStyle::ApproximatelyTimedLoose);
    let at_rec =
        TxTraceRecorder::install(&mut at_built.sim, &at_built.bus, colorconv::TLM_AT_SIGNALS);
    at_built.run();
    let at = TxTraceRecorder::take_trace(&at_built.sim, at_rec);

    assert_subset_equal(&at, &rtl, colorconv::TLM_AT_SIGNALS);
}
